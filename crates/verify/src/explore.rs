//! The exhaustive search: breadth-first exploration of every reachable
//! world of a bounded configuration, with invariant checks on each state
//! and shortest-counterexample extraction.
//!
//! States are recognized by a canonical fingerprint: the protocol's
//! [`StateSnapshot`] plus the environment (pending events, armed timers,
//! remaining budgets, the retire ledger), after
//!
//! * dropping dedup/tombstone entries for dead transfer ids and densely
//!   renumbering the live ones (retransmission histories merge), and
//! * on rotation-symmetric configurations, keying on the
//!   lexicographically minimal host rotation.
//!
//! The fingerprint is hash-compacted to 128 bits (two independent 64-bit
//! hashes of the canonical value), so the seen set stores 16 bytes per
//! state instead of the full world; a collision would need ~2^64 states
//! to become likely — far beyond any bounded run here.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};

use data_roundabout::protocol::snapshot::{rotate_frag, rotate_host, EnvSnap, StateSnapshot};
use data_roundabout::protocol::Timer;

use crate::configs::{CheckConfig, Rescale};
use crate::invariants;
use crate::model::{fate_vectors, Choice, Ev, World};
use crate::trace::format_step;

/// An invariant violation with its shortest reproducing trace.
#[derive(Debug)]
pub struct Violation {
    /// Invariant family (`credit-conservation`, `exactly-once-copy`,
    /// `role-exactly-once`, `epoch-accounting`, `exactly-once-retire`,
    /// `teardown`, `stuck-state`).
    pub family: &'static str,
    /// Human-readable description of the broken condition.
    pub detail: String,
    /// Shortest input trace reaching the violation, one
    /// [`format_step`] line per transition.
    pub trace: Vec<String>,
}

/// The result of one bounded exploration.
#[derive(Debug)]
pub struct Report {
    /// The explored configuration.
    pub config: CheckConfig,
    /// Distinct canonical states visited.
    pub states: usize,
    /// Transitions applied (including re-entries into seen states).
    pub transitions: usize,
    /// Longest shortest-path depth reached.
    pub max_depth: usize,
    /// First violation found (BFS order makes its trace shortest), or
    /// `None` when every reachable state satisfies all invariants.
    pub violation: Option<Violation>,
    /// Representative traces captured on the way: `(label, trace)` for
    /// the first completion, heal, duplicate drop and departure.
    pub samples: Vec<(&'static str, Vec<String>)>,
}

/// Exploration abandoned — never silently truncated.
#[derive(Debug)]
pub enum ExploreError {
    /// The configuration's `max_states` cap was exceeded.
    StateLimit {
        /// States explored before giving up.
        explored: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::StateLimit { explored, cap } => {
                write!(f, "state limit exceeded: {explored} explored, cap {cap}")
            }
        }
    }
}

/// Pending-event mirror for the fingerprint: envelope reduced to its
/// routing fields, tids canonicalized.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum EvKey {
    Setup(usize),
    JoinDone(usize),
    AbsorbDone(usize),
    Wire {
        to: usize,
        tid: u64,
        intact: bool,
        env: EnvSnap,
    },
    Ack {
        to: usize,
        tid: u64,
    },
}

/// Armed-timer mirror (the protocol's `Timer` carries no `Hash`/`Ord`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum TimerKey {
    Re {
        tid: u64,
        attempt: u32,
    },
    Probe {
        from: usize,
        to: usize,
        attempt: u32,
    },
    Drain {
        host: usize,
        attempt: u32,
    },
}

/// The canonical value two worlds are compared through.
#[derive(PartialEq, Eq, PartialOrd, Ord, Hash)]
struct CanonState {
    snap: StateSnapshot,
    events: Vec<EvKey>,
    timers: Vec<TimerKey>,
    budgets: (u32, u32, u32, u32),
    rescale: Vec<Rescale>,
    retired: u64,
    sabotaged: bool,
}

impl CanonState {
    /// The canonical value under the host relabeling `h -> (h+rot) % n`
    /// (only called on configurations where rotation is an
    /// automorphism: no standbys, no rescale ops, uniform fragments).
    fn rotated(&self, rot: usize, per: usize) -> CanonState {
        let n = self.snap.hosts.len();
        let mut events: Vec<EvKey> = self
            .events
            .iter()
            .map(|e| match e {
                EvKey::Setup(h) => EvKey::Setup(rotate_host(*h, rot, n)),
                EvKey::JoinDone(h) => EvKey::JoinDone(rotate_host(*h, rot, n)),
                EvKey::AbsorbDone(h) => EvKey::AbsorbDone(rotate_host(*h, rot, n)),
                EvKey::Wire {
                    to,
                    tid,
                    intact,
                    env,
                } => EvKey::Wire {
                    to: rotate_host(*to, rot, n),
                    tid: *tid,
                    intact: *intact,
                    env: EnvSnap {
                        id: rotate_frag(env.id, rot, n, per),
                        origin: rotate_host(env.origin, rot, n),
                        hops_remaining: env.hops_remaining,
                        visited: data_roundabout::protocol::snapshot::rotate_mask(
                            env.visited,
                            rot,
                            n,
                        ),
                    },
                },
                EvKey::Ack { to, tid } => EvKey::Ack {
                    to: rotate_host(*to, rot, n),
                    tid: *tid,
                },
            })
            .collect();
        events.sort_unstable();
        let mut timers: Vec<TimerKey> = self
            .timers
            .iter()
            .map(|t| match *t {
                TimerKey::Re { tid, attempt } => TimerKey::Re { tid, attempt },
                TimerKey::Probe { from, to, attempt } => TimerKey::Probe {
                    from: rotate_host(from, rot, n),
                    to: rotate_host(to, rot, n),
                    attempt,
                },
                TimerKey::Drain { host, attempt } => TimerKey::Drain {
                    host: rotate_host(host, rot, n),
                    attempt,
                },
            })
            .collect();
        timers.sort_unstable();
        let mut retired = 0u64;
        for fid in 0..64usize {
            if self.retired & (1u64 << fid) != 0 {
                retired |= 1u64 << rotate_frag(fid, rot, n, per);
            }
        }
        CanonState {
            snap: self.snap.rotated(rot, per),
            events,
            timers,
            budgets: self.budgets,
            rescale: self.rescale.clone(),
            retired,
            sabotaged: self.sabotaged,
        }
    }
}

/// Builds the canonical value of a world and hash-compacts it to 128
/// bits.
fn fingerprint(world: &World, cfg: &CheckConfig) -> u128 {
    let mut snap = world.proto.snapshot();
    // Canonicalize transfer ids: collect every tid that can still act
    // (ledger keys, awaited acks, pending wire/ack events, armed
    // retransmit timers) and renumber them densely from 1.
    let mut live = snap.live_tids();
    for e in &world.pending {
        match e {
            Ev::Wire { tid, .. } | Ev::AckWire { tid, .. } => live.push(*tid),
            _ => {}
        }
    }
    for t in &world.timers {
        if let Timer::Retransmit { tid, .. } = t {
            live.push(*tid);
        }
    }
    live.sort_unstable();
    live.dedup();
    let map: Vec<(u64, u64)> = live
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u64 + 1))
        .collect();
    let lookup = |t: u64| -> u64 {
        map.binary_search_by_key(&t, |&(old, _)| old)
            .ok()
            .and_then(|i| map.get(i))
            .map_or(t, |&(_, new)| new)
    };
    snap.retain_tids(&live);
    snap.map_tids(&map);
    let mut events: Vec<EvKey> = world
        .pending
        .iter()
        .map(|e| match e {
            Ev::Setup(h) => EvKey::Setup(*h),
            Ev::JoinDone(h) => EvKey::JoinDone(*h),
            Ev::AbsorbDone(h) => EvKey::AbsorbDone(*h),
            Ev::Wire {
                to,
                tid,
                intact,
                env,
            } => EvKey::Wire {
                to: *to,
                tid: lookup(*tid),
                intact: *intact,
                env: EnvSnap {
                    id: env.id.0,
                    origin: env.origin.0,
                    hops_remaining: env.hops_remaining,
                    visited: env.visited,
                },
            },
            Ev::AckWire { to, tid } => EvKey::Ack {
                to: *to,
                tid: lookup(*tid),
            },
        })
        .collect();
    events.sort_unstable();
    let mut timers: Vec<TimerKey> = world
        .timers
        .iter()
        .map(|t| match *t {
            Timer::Retransmit { tid, attempt } => TimerKey::Re {
                tid: lookup(tid),
                attempt,
            },
            Timer::Probe { from, to, attempt } => TimerKey::Probe {
                from: from.0,
                to: to.0,
                attempt,
            },
            Timer::DrainDeadline { host, attempt } => TimerKey::Drain {
                host: host.0,
                attempt,
            },
        })
        .collect();
    timers.sort_unstable();
    let mut rescale = world.rescale.clone();
    rescale.sort_unstable();
    let canon = CanonState {
        snap,
        events,
        timers,
        budgets: (
            world.crashes,
            world.losses,
            world.corruptions,
            world.spurious,
        ),
        rescale,
        retired: world.retired,
        sabotaged: world.sabotaged,
    };
    let canon = if cfg.symmetry && cfg.symmetry_valid() {
        let per = cfg.frags.first().copied().unwrap_or(0);
        let mut best: Option<CanonState> = None;
        for rot in 1..cfg.hosts {
            let cand = canon.rotated(rot, per);
            if best.as_ref().is_none_or(|b| cand < *b) {
                best = Some(cand);
            }
        }
        match best {
            Some(b) if b < canon => b,
            _ => canon,
        }
    } else {
        canon
    };
    hash128(&canon)
}

/// Two independently-seeded 64-bit hashes, concatenated.
fn hash128<T: Hash>(v: &T) -> u128 {
    let mut a = DefaultHasher::new();
    0u8.hash(&mut a);
    v.hash(&mut a);
    let mut b = DefaultHasher::new();
    1u64.hash(&mut b);
    v.hash(&mut b);
    (u128::from(a.finish()) << 64) | u128::from(b.finish())
}

/// One node of the predecessor arena (trace reconstruction).
struct Node {
    parent: usize,
    line: String,
}

const ROOT: usize = usize::MAX;

fn trace_to(arena: &[Node], mut idx: usize) -> Vec<String> {
    let mut lines = Vec::new();
    while idx != ROOT {
        let node = &arena[idx];
        lines.push(node.line.clone());
        idx = node.parent;
    }
    lines.reverse();
    lines
}

/// Exhaustively explores `cfg`, breadth-first. Returns the report —
/// with the shortest-trace violation if one exists — or an error if the
/// state cap was exceeded.
pub fn explore(cfg: &CheckConfig) -> Result<Report, ExploreError> {
    let root = World::init(cfg);
    let root_fp = fingerprint(&root, cfg);
    let mut seen: HashSet<u128> = HashSet::new();
    seen.insert(root_fp);
    let mut arena: Vec<Node> = Vec::new();
    let mut frontier: VecDeque<(World, usize, u128, usize)> = VecDeque::new();
    frontier.push_back((root, ROOT, root_fp, 0));
    let mut states = 1usize;
    let mut transitions = 0usize;
    let mut max_depth = 0usize;
    let mut samples: Vec<(&'static str, Vec<String>)> = Vec::new();
    let total_frags = cfg.total_frags();

    while let Some((world, node, own_fp, depth)) = frontier.pop_front() {
        max_depth = max_depth.max(depth);
        let snap = world.proto.snapshot();
        let parent_epoch = invariants::epoch_of(&snap);
        let progress = world.progress_choices();
        let mut moves = false;
        let mut choices: Vec<(Choice, bool)> = progress.into_iter().map(|c| (c, true)).collect();
        choices.extend(world.crash_choices().into_iter().map(|c| (c, false)));
        for (choice, is_progress) in choices {
            // Dry run with every send surviving: discovers the send
            // count (which is fate-independent) and doubles as the
            // all-`Ok` child.
            let mut first = world.clone();
            let first_outcome = first.apply(&choice, &[]);
            let vectors = if first_outcome.sends == 0 || !cfg.reliable {
                vec![Vec::new()]
            } else {
                fate_vectors(first_outcome.sends, world.losses, world.corruptions)
            };
            let mut first = Some((first, first_outcome));
            for fates in vectors {
                let (child, outcome) = match first.take() {
                    Some(ok_child) => ok_child,
                    None => {
                        let mut child = world.clone();
                        let outcome = child.apply(&choice, &fates);
                        (child, outcome)
                    }
                };
                transitions += 1;
                let line = format_step(&choice, &fates);
                let child_snap = child.proto.snapshot();
                if let Some((family, detail)) =
                    invariants::check(&child, &child_snap, &outcome, parent_epoch)
                {
                    let mut trace = trace_to(&arena, node);
                    trace.push(line);
                    return Ok(Report {
                        config: cfg.clone(),
                        states,
                        transitions,
                        max_depth,
                        violation: Some(Violation {
                            family,
                            detail,
                            trace,
                        }),
                        samples,
                    });
                }
                let fp = fingerprint(&child, cfg);
                if is_progress && fp != own_fp {
                    moves = true;
                }
                let interesting: &[(&'static str, bool)] = &[
                    (
                        "completion",
                        child.proto.fragments_completed() == total_frags,
                    ),
                    ("heal", outcome.healed),
                    ("duplicate-drop", outcome.dup_dropped),
                    ("departure", outcome.departed),
                ];
                for &(label, hit) in interesting {
                    if hit && samples.iter().all(|(l, _)| *l != label) {
                        let mut trace = trace_to(&arena, node);
                        trace.push(line.clone());
                        samples.push((label, trace));
                    }
                }
                if seen.insert(fp) {
                    states += 1;
                    if states > cfg.max_states {
                        return Err(ExploreError::StateLimit {
                            explored: states,
                            cap: cfg.max_states,
                        });
                    }
                    arena.push(Node { parent: node, line });
                    frontier.push_back((child, arena.len() - 1, fp, depth + 1));
                }
            }
        }
        // I5 — stuck-state: quiescent (no progress transition leaves
        // this state) yet some live host still holds undelivered work.
        if !moves {
            if let Some(detail) = invariants::live_work(&snap) {
                return Ok(Report {
                    config: cfg.clone(),
                    states,
                    transitions,
                    max_depth,
                    violation: Some(Violation {
                        family: "stuck-state",
                        detail,
                        trace: trace_to(&arena, node),
                    }),
                    samples,
                });
            }
        }
    }

    Ok(Report {
        config: cfg.clone(),
        states,
        transitions,
        max_depth,
        violation: None,
        samples,
    })
}
