//! The counterexample trace format: one line per transition, written by
//! the explorer and replayed as a regression fixture.
//!
//! Grammar (tokens separated by single spaces; `<n>` is a decimal):
//!
//! ```text
//! setup h<host>                      deliver t<tid> f<frag> h<to>
//! join h<host>                       deliver-corrupt t<tid> f<frag> h<to>
//! absorb h<host>                     ack t<tid> h<to>
//! crash h<host>                      tick-re t<tid> a<attempt>
//! join-req h<host>                   tick-probe h<from> h<to> a<attempt>
//! drain-req h<host>                  tick-drain h<host> a<attempt>
//! ```
//!
//! A step whose transition emitted sends carries the dealt fates as a
//! suffix: ` ! ok,drop,corrupt` (one entry per send, in emission order).

use data_roundabout::protocol::Timer;

use crate::configs::{CheckConfig, Rescale};
use crate::invariants;
use crate::model::{Choice, Ev, Fate, World};

/// Renders one applied transition (and the fates its sends were dealt)
/// as a trace line.
pub fn format_step(choice: &Choice, fates: &[Fate]) -> String {
    let mut line = match choice {
        Choice::Ev(Ev::Setup(h)) => format!("setup h{h}"),
        Choice::Ev(Ev::JoinDone(h)) => format!("join h{h}"),
        Choice::Ev(Ev::AbsorbDone(h)) => format!("absorb h{h}"),
        Choice::Ev(Ev::Wire {
            to,
            tid,
            intact,
            env,
        }) => {
            let verb = if *intact {
                "deliver"
            } else {
                "deliver-corrupt"
            };
            format!("{verb} t{tid} f{} h{to}", env.id.0)
        }
        Choice::Ev(Ev::AckWire { to, tid }) => format!("ack t{tid} h{to}"),
        Choice::Tick(Timer::Retransmit { tid, attempt }) => format!("tick-re t{tid} a{attempt}"),
        Choice::Tick(Timer::Probe { from, to, attempt }) => {
            format!("tick-probe h{} h{} a{attempt}", from.0, to.0)
        }
        Choice::Tick(Timer::DrainDeadline { host, attempt }) => {
            format!("tick-drain h{} a{attempt}", host.0)
        }
        Choice::Crash(h) => format!("crash h{h}"),
        Choice::Rescale(Rescale::Join(h)) => format!("join-req h{h}"),
        Choice::Rescale(Rescale::Drain(h)) => format!("drain-req h{h}"),
    };
    if !fates.is_empty() {
        let dealt: Vec<&str> = fates
            .iter()
            .map(|f| match f {
                Fate::Ok => "ok",
                Fate::Lost => "drop",
                Fate::Corrupt => "corrupt",
            })
            .collect();
        line.push_str(" ! ");
        line.push_str(&dealt.join(","));
    }
    line
}

/// A parsed trace line, matched against the enabled transitions of the
/// replayed world (wire steps match on `(tid, to, intactness)` — the
/// fragment id is redundant, kept in the format for readability).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// `setup h<host>`
    Setup(usize),
    /// `join h<host>`
    Join(usize),
    /// `absorb h<host>`
    Absorb(usize),
    /// `deliver[-corrupt] t<tid> f<frag> h<to>`
    Deliver {
        /// Transfer id.
        tid: u64,
        /// Receiving host.
        to: usize,
        /// False for `deliver-corrupt`.
        intact: bool,
    },
    /// `ack t<tid> h<to>`
    Ack {
        /// Acknowledged transfer.
        tid: u64,
    },
    /// `tick-re t<tid> a<attempt>`
    TickRe {
        /// Transfer id.
        tid: u64,
        /// Attempt the timer was armed for.
        attempt: u32,
    },
    /// `tick-probe h<from> h<to> a<attempt>`
    TickProbe {
        /// Probing sender.
        from: usize,
        /// Probed receiver.
        to: usize,
        /// Probe attempt.
        attempt: u32,
    },
    /// `tick-drain h<host> a<attempt>`
    TickDrain {
        /// Draining host.
        host: usize,
        /// Deadline attempt.
        attempt: u32,
    },
    /// `crash h<host>`
    Crash(usize),
    /// `join-req h<host>`
    JoinReq(usize),
    /// `drain-req h<host>`
    DrainReq(usize),
}

fn field(tok: Option<&str>, prefix: char) -> Result<u64, String> {
    let tok = tok.ok_or_else(|| format!("missing {prefix}<n> field"))?;
    tok.strip_prefix(prefix)
        .ok_or_else(|| format!("expected {prefix}<n>, got {tok:?}"))?
        .parse::<u64>()
        .map_err(|_| format!("bad number in {tok:?}"))
}

/// Parses one trace line into the step and the fates its sends were
/// dealt.
pub fn parse_step(line: &str) -> Result<(Step, Vec<Fate>), String> {
    let (head, fates) = match line.split_once(" ! ") {
        Some((head, dealt)) => {
            let fates = dealt
                .split(',')
                .map(|f| match f.trim() {
                    "ok" => Ok(Fate::Ok),
                    "drop" => Ok(Fate::Lost),
                    "corrupt" => Ok(Fate::Corrupt),
                    other => Err(format!("unknown fate {other:?}")),
                })
                .collect::<Result<Vec<Fate>, String>>()?;
            (head, fates)
        }
        None => (line, Vec::new()),
    };
    let mut toks = head.split_whitespace();
    let verb = toks.next().ok_or_else(|| "empty step".to_string())?;
    let step = match verb {
        "setup" => Step::Setup(field(toks.next(), 'h')? as usize),
        "join" => Step::Join(field(toks.next(), 'h')? as usize),
        "absorb" => Step::Absorb(field(toks.next(), 'h')? as usize),
        "deliver" | "deliver-corrupt" => {
            let tid = field(toks.next(), 't')?;
            let _frag = field(toks.next(), 'f')?;
            Step::Deliver {
                tid,
                to: field(toks.next(), 'h')? as usize,
                intact: verb == "deliver",
            }
        }
        "ack" => {
            let tid = field(toks.next(), 't')?;
            let _to = field(toks.next(), 'h')?;
            Step::Ack { tid }
        }
        "tick-re" => Step::TickRe {
            tid: field(toks.next(), 't')?,
            attempt: field(toks.next(), 'a')? as u32,
        },
        "tick-probe" => Step::TickProbe {
            from: field(toks.next(), 'h')? as usize,
            to: field(toks.next(), 'h')? as usize,
            attempt: field(toks.next(), 'a')? as u32,
        },
        "tick-drain" => Step::TickDrain {
            host: field(toks.next(), 'h')? as usize,
            attempt: field(toks.next(), 'a')? as u32,
        },
        "crash" => Step::Crash(field(toks.next(), 'h')? as usize),
        "join-req" => Step::JoinReq(field(toks.next(), 'h')? as usize),
        "drain-req" => Step::DrainReq(field(toks.next(), 'h')? as usize),
        other => return Err(format!("unknown step verb {other:?}")),
    };
    Ok((step, fates))
}

fn matches_choice(step: &Step, choice: &Choice) -> bool {
    match (step, choice) {
        (Step::Setup(a), Choice::Ev(Ev::Setup(b))) => a == b,
        (Step::Join(a), Choice::Ev(Ev::JoinDone(b))) => a == b,
        (Step::Absorb(a), Choice::Ev(Ev::AbsorbDone(b))) => a == b,
        (
            Step::Deliver { tid, to, intact },
            Choice::Ev(Ev::Wire {
                to: cto,
                tid: ctid,
                intact: cintact,
                ..
            }),
        ) => tid == ctid && to == cto && intact == cintact,
        (Step::Ack { tid }, Choice::Ev(Ev::AckWire { tid: ctid, .. })) => tid == ctid,
        (
            Step::TickRe { tid, attempt },
            Choice::Tick(Timer::Retransmit {
                tid: ctid,
                attempt: ca,
            }),
        ) => tid == ctid && attempt == ca,
        (
            Step::TickProbe { from, to, attempt },
            Choice::Tick(Timer::Probe {
                from: cf,
                to: ct,
                attempt: ca,
            }),
        ) => *from == cf.0 && *to == ct.0 && attempt == ca,
        (
            Step::TickDrain { host, attempt },
            Choice::Tick(Timer::DrainDeadline {
                host: ch,
                attempt: ca,
            }),
        ) => *host == ch.0 && attempt == ca,
        (Step::Crash(a), Choice::Crash(b)) => a == b,
        (Step::JoinReq(a), Choice::Rescale(Rescale::Join(b))) => a == b,
        (Step::DrainReq(a), Choice::Rescale(Rescale::Drain(b))) => a == b,
        _ => false,
    }
}

/// The result of replaying a trace: the first invariant violation (step
/// index plus family name) if any, and the final world for further
/// assertions.
pub struct ReplayOutcome {
    /// `(zero-based step index, invariant family)` of the first
    /// violation, `None` when the whole trace replays clean.
    pub violation: Option<(usize, &'static str)>,
    /// The world after the last replayed step.
    pub world: World,
}

/// Replays a trace (one step per non-empty, non-`#` line) against a
/// fresh world of `cfg`, checking every invariant family after each
/// step. `Err` means the trace no longer matches the protocol — a step
/// failed to parse or named a transition that is not enabled.
pub fn replay(cfg: &CheckConfig, trace: &str) -> Result<ReplayOutcome, String> {
    let mut world = World::init(cfg);
    for (idx, line) in trace
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .enumerate()
    {
        let (step, fates) = parse_step(line).map_err(|e| format!("step {idx} ({line:?}): {e}"))?;
        let mut choices = world.progress_choices();
        choices.extend(world.crash_choices());
        let choice = choices
            .into_iter()
            .find(|c| matches_choice(&step, c))
            .ok_or_else(|| format!("step {idx} ({line:?}): transition not enabled"))?;
        let parent_epoch = invariants::epoch_of(&world.proto.snapshot());
        let outcome = world.apply(&choice, &fates);
        let snap = world.proto.snapshot();
        if let Some((family, _detail)) = invariants::check(&world, &snap, &outcome, parent_epoch) {
            return Ok(ReplayOutcome {
                violation: Some((idx, family)),
                world,
            });
        }
    }
    Ok(ReplayOutcome {
        violation: None,
        world,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_fates() {
        let (step, fates) = parse_step("tick-re t3 a2 ! drop,ok").unwrap();
        assert_eq!(step, Step::TickRe { tid: 3, attempt: 2 });
        assert_eq!(fates, vec![Fate::Lost, Fate::Ok]);
    }

    #[test]
    fn rejects_unknown_verbs_and_fates() {
        assert!(parse_step("warp h0").is_err());
        assert!(parse_step("deliver t1 f0 h1 ! sideways").is_err());
    }

    #[test]
    fn replays_a_setup_prefix() {
        let cfg = crate::configs::smoke();
        let out = replay(&cfg, "setup h0\nsetup h1\n# comment\njoin h0 ! ok\n").unwrap();
        assert_eq!(out.violation, None);
        assert!(!out.world.pending.is_empty());
        assert!(replay(&cfg, "deliver t9 f0 h1").is_err(), "not enabled");
    }
}
