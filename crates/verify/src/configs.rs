//! Bounded configurations the checker explores, including the presets
//! behind `cargo xtask verify --smoke` and the deep suite.

/// One scheduled rescale operation the environment may issue at any
/// point (each is consumed when issued, even if the protocol ignores
/// it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rescale {
    /// `Input::JoinRequest` for the given standby host.
    Join(usize),
    /// `Input::DrainRequest` for the given member host.
    Drain(usize),
}

/// A bounded model: ring shape, fault budgets, rescale schedule and
/// search options.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Display name (reports and trace fixtures).
    pub name: &'static str,
    /// Ring slots (members + standbys).
    pub hosts: usize,
    /// Local fragments per host.
    pub frags: Vec<usize>,
    /// Buffer-pool elements per host.
    pub buffers: usize,
    /// Retransmission budget per transfer.
    pub max_retransmits: u32,
    /// Acked stop-and-wait transport (the fault-tolerant path).
    pub reliable: bool,
    /// Standby bitmask (hosts outside the ring until a `Join` rescale).
    pub standby: u64,
    /// How many hosts the environment may crash.
    pub crashes: u32,
    /// How many send attempts the environment may drop.
    pub losses: u32,
    /// How many send attempts the environment may corrupt.
    pub corruptions: u32,
    /// How many timeouts may fire early (while a deliverable copy or its
    /// ack is still pending) — the spurious-retransmission races.
    pub spurious: u32,
    /// Rescale operations the environment may issue, in any order.
    pub rescale: Vec<Rescale>,
    /// Canonicalize states up to ring rotation. Only sound when the
    /// configuration is rotation-symmetric: no standbys, no rescale ops,
    /// equal fragment counts and identical payloads at every host.
    pub symmetry: bool,
    /// Hard exploration cap: exceeding it is an error, never a silent
    /// truncation.
    pub max_states: usize,
    /// Self-check: grant one unearned receive credit at the first
    /// accepted delivery (must break invariant 1).
    pub sabotage: bool,
    /// Multi-tenant mode: per-query, per-host local fragment counts.
    /// Empty means a classic single-query ring (`frags` applies);
    /// non-empty ignores `frags` and builds the protocol via
    /// `RingProtocol::new_multi`.
    pub queries: Vec<Vec<usize>>,
    /// Admission bound for multi-tenant mode (ignored when `queries` is
    /// empty).
    pub max_active: usize,
}

impl CheckConfig {
    /// Total fragments across all hosts (and, in multi-tenant mode,
    /// across all queries).
    pub fn total_frags(&self) -> usize {
        if self.queries.is_empty() {
            self.frags.iter().sum()
        } else {
            self.queries.iter().flatten().sum()
        }
    }

    /// Is host-rotation symmetry sound for this configuration?
    pub fn symmetry_valid(&self) -> bool {
        self.queries.is_empty()
            && self.standby == 0
            && self.rescale.is_empty()
            && self.frags.windows(2).all(|w| w.first() == w.last())
    }
}

/// The `--smoke` bound: 2 hosts, 1 fragment, budgets of one crash, one
/// loss, one corruption and one spurious timeout. The failure total
/// (loss + corruption + spurious = 3) stays below `max_retransmits`, so
/// the failure detector can never legitimately exhaust a budget against
/// a live host — any `Teardown` is a genuine violation.
pub fn smoke() -> CheckConfig {
    CheckConfig {
        name: "smoke-2h-1f",
        hosts: 2,
        frags: vec![1, 0],
        buffers: 1,
        max_retransmits: 4,
        reliable: true,
        standby: 0,
        crashes: 1,
        losses: 1,
        corruptions: 1,
        spurious: 1,
        rescale: Vec::new(),
        symmetry: false,
        max_states: 2_000_000,
        sabotage: false,
        queries: Vec::new(),
        max_active: 0,
    }
}

/// The multi-tenant `--smoke` bound: 2 hosts, 2 queries of one fragment
/// each (one originating at either host), admission bound 1 — so the
/// second query waits in the admission queue and is only admitted when
/// the first completes — with budgets of one crash, one loss, one
/// corruption and one spurious timeout. Adds the per-query
/// credit-partition invariant (I6) to everything the classic smoke
/// bound checks; exactly-once copy/retire is checked per (query,
/// fragment) because fragment ids stay globally unique across queries.
pub fn multi_smoke() -> CheckConfig {
    CheckConfig {
        name: "smoke-2h-2q",
        frags: Vec::new(),
        queries: vec![vec![1, 0], vec![0, 1]],
        max_active: 1,
        ..smoke()
    }
}

/// The sabotage self-check: the smoke ring with the double-credit grant
/// armed and the fault budgets zeroed, so the shortest counterexample is
/// the plain setup/deliver prefix to the first accepted delivery.
pub fn sabotage() -> CheckConfig {
    CheckConfig {
        name: "smoke-sabotage",
        crashes: 0,
        losses: 0,
        corruptions: 0,
        spurious: 0,
        sabotage: true,
        ..smoke()
    }
}

/// Deep bound: 3 hosts with one planned drain racing one crash and one
/// loss.
pub fn deep_drain() -> CheckConfig {
    CheckConfig {
        name: "deep-3h-drain",
        hosts: 3,
        frags: vec![1, 1, 0],
        buffers: 1,
        max_retransmits: 2,
        reliable: true,
        standby: 0,
        crashes: 1,
        losses: 1,
        corruptions: 0,
        spurious: 0,
        rescale: vec![Rescale::Drain(1)],
        symmetry: false,
        max_states: 8_000_000,
        sabotage: false,
        queries: Vec::new(),
        max_active: 0,
    }
}

/// Deep bound: a rotation-symmetric 3-host ring (one fragment each, one
/// crash) — the configuration that exercises the symmetry reduction.
pub fn symmetric3() -> CheckConfig {
    CheckConfig {
        name: "deep-3h-symmetric",
        hosts: 3,
        frags: vec![1, 1, 1],
        buffers: 1,
        max_retransmits: 2,
        reliable: true,
        standby: 0,
        crashes: 1,
        losses: 1,
        corruptions: 0,
        spurious: 0,
        rescale: Vec::new(),
        symmetry: true,
        max_states: 8_000_000,
        sabotage: false,
        queries: Vec::new(),
        max_active: 0,
    }
}

/// Deep bound: two crashes plus a spurious timeout on a 3-host ring —
/// the budget shape that exposes late-wire-copy salvage races.
pub fn two_crash() -> CheckConfig {
    CheckConfig {
        name: "deep-3h-2crash",
        hosts: 3,
        frags: vec![1, 0, 0],
        buffers: 1,
        max_retransmits: 3,
        reliable: true,
        standby: 0,
        crashes: 2,
        losses: 1,
        corruptions: 1,
        spurious: 1,
        rescale: Vec::new(),
        symmetry: false,
        max_states: 8_000_000,
        sabotage: false,
        queries: Vec::new(),
        max_active: 0,
    }
}

/// Deep bound: a standby activation (planned join) racing one crash.
pub fn deep_join() -> CheckConfig {
    CheckConfig {
        name: "deep-3h-join",
        hosts: 3,
        frags: vec![1, 1, 0],
        buffers: 1,
        max_retransmits: 2,
        reliable: true,
        standby: 0b100,
        crashes: 1,
        losses: 1,
        corruptions: 0,
        spurious: 0,
        rescale: vec![Rescale::Join(2)],
        symmetry: false,
        max_states: 8_000_000,
        sabotage: false,
        queries: Vec::new(),
        max_active: 0,
    }
}

/// The classic (unacknowledged) path: no fault ledger, no timers — a
/// small sanity bound proving the checker drives both protocol modes.
pub fn classic() -> CheckConfig {
    CheckConfig {
        name: "classic-2h",
        hosts: 2,
        frags: vec![1, 1],
        buffers: 1,
        max_retransmits: 0,
        reliable: false,
        standby: 0,
        crashes: 0,
        losses: 0,
        corruptions: 0,
        spurious: 0,
        rescale: Vec::new(),
        symmetry: false,
        max_states: 100_000,
        sabotage: false,
        queries: Vec::new(),
        max_active: 0,
    }
}
