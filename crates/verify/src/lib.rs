//! Explicit-state model checking for the sans-IO ring protocol.
//!
//! PR 4 made [`data_roundabout::protocol::RingProtocol`] a pure state
//! machine: typed [`Input`](data_roundabout::protocol::Input)s in, ordered
//! [`Output`](data_roundabout::protocol::Output)s out, no IO, threads,
//! clocks or randomness. That shape admits *exhaustive* verification: for
//! a small bounded configuration (2–3 hosts, 1–2 fragments, a fault
//! budget, optionally one planned join/drain) this crate enumerates every
//! reachable protocol state — TLA+-style explicit-state exploration, but
//! run directly against the shipping Rust code — and checks five safety
//! invariant families on each one:
//!
//! 1. **credit conservation** — every occupied buffer-pool element of a
//!    live host is explained by a held envelope, an unsettled in-flight
//!    transfer, or a wire copy;
//! 2. **exactly-once delivery per fragment** — at every instant each
//!    unretired fragment has exactly one live copy (queued, in flight, or
//!    salvageable on a wire), and each retires exactly once;
//! 3. **role-ledger exactly-once** — the union of per-host role tables is
//!    always a permutation of the initial member roles;
//! 4. **membership-epoch accounting** — the epoch equals completed joins
//!    plus drains and never decreases;
//! 5. **no stuck states** — a quiescent frontier (no pending event, no
//!    armed timer that changes state) with undelivered work on any *live*
//!    host is a verification failure (work wedged on an undetectable
//!    corpse is the documented, allowed stall).
//!
//! Any [`Output::Teardown`](data_roundabout::protocol::Output) is a
//! violation by itself — bounded fault budgets are chosen so the failure
//! detector can never legitimately kill a live host.
//!
//! The driver's fault dice are replaced by nondeterministic branching
//! ([`model::Fate`]), and the search ([`explore`]) reduces the state
//! space with canonical fingerprints ([`data_roundabout::protocol::
//! snapshot`]): transfer-id renumbering, host-rotation symmetry on
//! symmetric configs, eager wire-release, and pruning of provably inert
//! events/timers. Counterexamples come back as shortest input traces in a
//! one-line-per-step text format ([`trace`]) that replays as a regression
//! fixture.

pub mod configs;
pub mod explore;
pub mod invariants;
pub mod model;
pub mod trace;

pub use configs::{CheckConfig, Rescale};
pub use explore::{explore, ExploreError, Report, Violation};
pub use model::{Choice, Ev, Fate, World};
pub use trace::{format_step, parse_step, replay, ReplayOutcome};
