//! `verify` — exhaustive model checking of the ring protocol over
//! bounded configurations (see `cargo xtask verify`).
//!
//! `--smoke` runs the 2-host bound plus the sabotage self-check in
//! seconds (tier-1 gate); `--deep` adds the 3-host bounds with a
//! planned drain, a planned join, double crashes, the rotation-symmetric
//! ring and the classic path.

use std::process::ExitCode;

use ring_verify::{configs, explore, CheckConfig, ExploreError, Report};

fn run(cfg: &CheckConfig, expect_violation: Option<&str>) -> Result<(), ()> {
    let started = std::time::Instant::now();
    let report = match explore(cfg) {
        Ok(report) => report,
        Err(ExploreError::StateLimit { explored, cap }) => {
            println!(
                "FAIL {:24} state cap exceeded ({explored} > {cap})",
                cfg.name
            );
            return Err(());
        }
    };
    let Report {
        states,
        transitions,
        max_depth,
        violation,
        ..
    } = &report;
    let elapsed = started.elapsed();
    let stats = format!(
        "{states} states, {transitions} transitions, depth {max_depth}, {:.2}s",
        elapsed.as_secs_f64()
    );
    match (violation, expect_violation) {
        (None, None) => {
            println!("ok   {:24} {stats}", cfg.name);
            Ok(())
        }
        (Some(v), Some(family)) if v.family == family => {
            println!(
                "ok   {:24} {stats} — seeded {family} caught, minimal trace ({} steps):",
                cfg.name,
                v.trace.len()
            );
            for line in &v.trace {
                println!("         {line}");
            }
            Ok(())
        }
        (Some(v), _) => {
            println!("FAIL {:24} {stats}", cfg.name);
            println!("     {} violated: {}", v.family, v.detail);
            println!("     shortest trace ({} steps):", v.trace.len());
            for line in &v.trace {
                println!("         {line}");
            }
            Err(())
        }
        (None, Some(family)) => {
            println!(
                "FAIL {:24} {stats} — seeded {family} NOT caught (checker self-check)",
                cfg.name
            );
            Err(())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deep = args.iter().any(|a| a == "--deep");
    let smoke = args.iter().any(|a| a == "--smoke");
    if !(smoke || deep) || args.iter().any(|a| a != "--smoke" && a != "--deep") {
        eprintln!("usage: verify --smoke | --deep");
        return ExitCode::from(2);
    }
    let mut suite: Vec<(CheckConfig, Option<&str>)> = vec![
        (configs::smoke(), None),
        (configs::multi_smoke(), None),
        (configs::sabotage(), Some("credit-conservation")),
    ];
    if deep {
        suite.extend([
            (configs::classic(), None),
            (configs::symmetric3(), None),
            (configs::deep_drain(), None),
            (configs::deep_join(), None),
            (configs::two_crash(), None),
        ]);
    }
    let mut failed = false;
    for (cfg, expect) in &suite {
        if run(cfg, *expect).is_err() {
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
