//! The checker's world model: the protocol under test plus the
//! environment state a driver would own — pending deliveries, armed
//! timers, fault budgets and the rescale schedule.
//!
//! Nondeterminism lives in two places: *which* enabled transition fires
//! next ([`World::progress_choices`] / [`World::crash_choices`]), and the
//! [`Fate`] of every send attempt a transition emits (the driver-side
//! fault dice, replaced by branching). Everything else is the protocol's
//! own deterministic reaction.
//!
//! Reductions applied here (see DESIGN.md §11 for the soundness
//! arguments):
//!
//! * **eager wire-release**: `Input::SendDone` is fed immediately after
//!   its `Output::Send` instead of being a separate event. After a
//!   reliable send the sender is gated on `awaiting` anyway, so deferring
//!   the wire release only delays that host's *next* transmission — every
//!   interleaving converges to the same states.
//! * **inert-event pruning** ([`World::normalize`]): events and timers
//!   whose handler provably remains a no-op forever (crashed-host
//!   completions, settled acks, stale timers, dead wire copies) are
//!   dropped at creation instead of being explored as distinct
//!   interleavings.
//! * **timeout fairness**: a retransmission timer may only fire while a
//!   deliverable copy or its ack is pending by consuming a `spurious`
//!   budget token. Unrestricted early timeouts would let the failure
//!   detector exhaust its budget against a live host — a `Teardown` no
//!   real driver (whose timeout far exceeds a hop delay) can produce.

use data_roundabout::envelope::Envelope;
use data_roundabout::protocol::{
    envelope_batches, query_batches, Input, Output, ProtocolConfig, RingProtocol, Timer,
};
use simnet::topology::HostId;

use crate::configs::{CheckConfig, Rescale};

/// Payload every modeled fragment carries: identical bytes at every
/// host, so host-rotation symmetry is exact.
pub const PAYLOAD: [u8; 4] = [0xA5; 4];

/// The fate the environment deals to one send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Intact copy reaches the wire.
    Ok,
    /// The attempt vanishes (consumes one `losses` token).
    Lost,
    /// The copy arrives with a flipped checksum (one `corruptions`
    /// token).
    Corrupt,
}

/// A pending environment event: an observation some driver component
/// would eventually feed back into the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ev {
    /// Host setup completes (`Input::SetupDone`).
    Setup(usize),
    /// A started join finishes (`Input::JoinDone`).
    JoinDone(usize),
    /// An absorb/handoff rebuild finishes (`Input::AbsorbDone`).
    AbsorbDone(usize),
    /// A wire copy arrives (`Input::Delivered`).
    Wire {
        /// Receiving host.
        to: usize,
        /// Transfer id.
        tid: u64,
        /// False when the copy was corrupted in flight.
        intact: bool,
        /// The copy itself.
        env: Envelope<Vec<u8>>,
    },
    /// An acknowledgement reaches the original sender (`Input::Ack`).
    AckWire {
        /// The awaiting sender (display only; `Input::Ack` keys on tid).
        to: usize,
        /// Acknowledged transfer.
        tid: u64,
    },
}

/// One transition the environment can choose at a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Choice {
    /// Deliver a pending event.
    Ev(Ev),
    /// Fire an armed timer.
    Tick(Timer),
    /// Crash a host (consumes one `crashes` token).
    Crash(usize),
    /// Issue a scheduled rescale request.
    Rescale(Rescale),
}

/// Side observations of one applied transition, consumed by the
/// invariant checks.
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// Send attempts emitted (drives fate enumeration).
    pub sends: usize,
    /// A fatal `Output::Teardown` fired.
    pub teardown: Option<&'static str>,
    /// A fragment retired that had already retired.
    pub double_retire: bool,
    /// An envelope was accepted into a pool (`Output::Delivered`).
    pub accepted_delivery: bool,
    /// The ring healed around a confirmed death (`Output::Heal`).
    pub healed: bool,
    /// A spurious retransmission delivered a dropped duplicate.
    pub dup_dropped: bool,
    /// A drained host departed (`Output::Departed`).
    pub departed: bool,
}

/// The protocol under test plus its modeled environment.
#[derive(Debug, Clone)]
pub struct World {
    /// The shipping state machine.
    pub proto: RingProtocol<Vec<u8>>,
    /// Pending environment events (unordered — delivery order is the
    /// search's nondeterminism).
    pub pending: Vec<Ev>,
    /// Armed timers, at most one per slot (tid / prober / drainee).
    pub timers: Vec<Timer>,
    /// Remaining crash budget.
    pub crashes: u32,
    /// Remaining loss budget.
    pub losses: u32,
    /// Remaining corruption budget.
    pub corruptions: u32,
    /// Remaining spurious-timeout budget.
    pub spurious: u32,
    /// Rescale operations not yet issued.
    pub rescale: Vec<Rescale>,
    /// Fragments observed retiring (`Output::Retire`), as a bitmask.
    pub retired: u64,
    /// Sabotage armed (from the config)?
    pub sabotage_armed: bool,
    /// Sabotage already triggered?
    pub sabotaged: bool,
}

impl World {
    /// The initial state of a bounded configuration: every host has a
    /// pending setup event; nothing is armed or in flight.
    pub fn init(cfg: &CheckConfig) -> World {
        let pcfg = ProtocolConfig {
            hosts: cfg.hosts,
            buffers_per_host: cfg.buffers,
            max_retransmits: cfg.max_retransmits,
            continuous: false,
            reliable: cfg.reliable,
            standby: cfg.standby,
        };
        let per_host = |frags: &[usize]| -> Vec<Vec<Vec<u8>>> {
            frags
                .iter()
                .map(|&k| (0..k).map(|_| PAYLOAD.to_vec()).collect())
                .collect()
        };
        let proto = if cfg.queries.is_empty() {
            RingProtocol::new(pcfg, envelope_batches(per_host(&cfg.frags), cfg.hosts))
        } else {
            let batches = cfg
                .queries
                .iter()
                .enumerate()
                .map(|(q, frags)| (q as u32, per_host(frags)))
                .collect();
            RingProtocol::new_multi(pcfg, query_batches(batches, cfg.hosts), cfg.max_active)
        };
        World {
            proto,
            pending: (0..cfg.hosts).map(Ev::Setup).collect(),
            timers: Vec::new(),
            crashes: cfg.crashes,
            losses: cfg.losses,
            corruptions: cfg.corruptions,
            spurious: cfg.spurious,
            rescale: cfg.rescale.clone(),
            retired: 0,
            sabotage_armed: cfg.sabotage,
            sabotaged: false,
        }
    }

    /// The progress transitions enabled now: every pending event, every
    /// timer allowed to fire (see [`World::tick_allowed`]) and every
    /// unissued rescale request. An empty set with undelivered work on a
    /// live host is the stuck-state violation.
    pub fn progress_choices(&self) -> Vec<Choice> {
        let mut v: Vec<Choice> = self.pending.iter().cloned().map(Choice::Ev).collect();
        for t in &self.timers {
            if self.tick_allowed(t).is_some() {
                v.push(Choice::Tick(*t));
            }
        }
        v.extend(self.rescale.iter().copied().map(Choice::Rescale));
        v
    }

    /// The crash transitions enabled now: any host the driver could
    /// still report dead — except the last live ring member, whose death
    /// would (correctly) tear the whole ring down.
    pub fn crash_choices(&self) -> Vec<Choice> {
        if self.crashes == 0 {
            return Vec::new();
        }
        let live_members = (0..self.proto.config().hosts)
            .filter(|&h| self.proto.is_member(HostId(h)) && !self.proto.is_crashed(HostId(h)))
            .count();
        self.proto
            .enabled_inputs()
            .into_iter()
            .filter_map(|i| match i {
                Input::PeerDead { host } => {
                    let last_member = self.proto.is_member(host) && live_members <= 1;
                    (!last_member).then_some(Choice::Crash(host.0))
                }
                _ => None,
            })
            .collect()
    }

    /// May this armed timer fire now — and does firing consume a
    /// `spurious` token? `None` means the tick stays disabled at this
    /// state. Only retransmission timeouts are restricted: firing one
    /// while a deliverable copy or its ack is still pending models a
    /// timeout racing the delivery, which real drivers make rare and the
    /// `spurious` budget makes bounded.
    pub fn tick_allowed(&self, t: &Timer) -> Option<bool> {
        let Timer::Retransmit { tid, .. } = t else {
            return Some(false);
        };
        let deliverable_pending = self.pending.iter().any(|e| match e {
            Ev::Wire {
                to,
                tid: t2,
                intact,
                ..
            } => t2 == tid && *intact && !self.proto.is_crashed(HostId(*to)),
            Ev::AckWire { tid: t2, .. } => t2 == tid,
            _ => false,
        });
        if !deliverable_pending {
            Some(false)
        } else if self.spurious > 0 {
            Some(true)
        } else {
            None
        }
    }

    /// Applies one transition. `fates` assigns an outcome to each send
    /// attempt the transition emits, in emission order (missing entries
    /// default to [`Fate::Ok`]); the send *count* is fate-independent, so
    /// the caller can discover it with an all-`Ok` dry run and then
    /// branch over fate vectors.
    pub fn apply(&mut self, choice: &Choice, fates: &[Fate]) -> StepOutcome {
        let mut outcome = StepOutcome::default();
        let mut fates = fates.iter().copied();
        match choice {
            Choice::Ev(ev) => {
                if let Some(i) = self.pending.iter().position(|e| e == ev) {
                    self.pending.remove(i);
                }
                let input = match ev.clone() {
                    Ev::Setup(h) => Input::SetupDone { host: HostId(h) },
                    Ev::JoinDone(h) => Input::JoinDone {
                        host: HostId(h),
                        app_finished: false,
                    },
                    Ev::AbsorbDone(h) => Input::AbsorbDone { host: HostId(h) },
                    Ev::Wire { to, tid, env, .. } => Input::Delivered {
                        to: HostId(to),
                        env,
                        tid,
                    },
                    Ev::AckWire { tid, .. } => Input::Ack { tid },
                };
                self.feed(input, &mut fates, &mut outcome);
                if let Ev::Wire { to, .. } = ev {
                    if self.sabotage_armed && !self.sabotaged && outcome.accepted_delivery {
                        // The seeded invariant break: one unearned credit.
                        self.proto.test_only_release_slot(HostId(*to));
                        self.sabotaged = true;
                    }
                }
            }
            Choice::Tick(t) => {
                if self.tick_allowed(t) == Some(true) {
                    self.spurious = self.spurious.saturating_sub(1);
                }
                self.timers.retain(|x| x != t);
                self.feed(Input::Tick { timer: *t }, &mut fates, &mut outcome);
            }
            Choice::Crash(h) => {
                self.crashes = self.crashes.saturating_sub(1);
                self.feed(
                    Input::PeerDead { host: HostId(*h) },
                    &mut fates,
                    &mut outcome,
                );
            }
            Choice::Rescale(r) => {
                if let Some(i) = self.rescale.iter().position(|x| x == r) {
                    self.rescale.remove(i);
                }
                let input = match *r {
                    Rescale::Join(h) => Input::JoinRequest { host: HostId(h) },
                    Rescale::Drain(h) => Input::DrainRequest { host: HostId(h) },
                };
                self.feed(input, &mut fates, &mut outcome);
            }
        }
        self.normalize();
        outcome
    }

    /// Feeds one input and maps the protocol's outputs back onto the
    /// environment: sends become wire events (after their fate is dealt
    /// and reported via `attempt_fate`, exactly as a driver would),
    /// timers are (re-)armed by slot, absorb/handoff work and started
    /// joins become completion events, and the wire is released eagerly.
    fn feed(
        &mut self,
        input: Input<Vec<u8>>,
        fates: &mut impl Iterator<Item = Fate>,
        outcome: &mut StepOutcome,
    ) {
        let outputs = self.proto.input(input);
        let mut send_dones: Vec<usize> = Vec::new();
        for o in outputs {
            match o {
                Output::StartJoin { host, .. } => self.pending.push(Ev::JoinDone(host.0)),
                Output::Send {
                    from, to, tid, env, ..
                } => {
                    outcome.sends += 1;
                    let fate = fates.next().unwrap_or(Fate::Ok);
                    if self.proto.config().reliable {
                        self.proto
                            .attempt_fate(tid, fate == Fate::Lost, fate == Fate::Corrupt);
                    }
                    match fate {
                        Fate::Ok => self.pending.push(Ev::Wire {
                            to: to.0,
                            tid,
                            intact: true,
                            env,
                        }),
                        Fate::Corrupt => {
                            self.corruptions = self.corruptions.saturating_sub(1);
                            let mut env = env;
                            env.checksum ^= 1;
                            self.pending.push(Ev::Wire {
                                to: to.0,
                                tid,
                                intact: false,
                                env,
                            });
                        }
                        Fate::Lost => self.losses = self.losses.saturating_sub(1),
                    }
                    send_dones.push(from.0);
                }
                Output::Ack { to, tid } => self.pending.push(Ev::AckWire { to: to.0, tid }),
                Output::ArmTimer { timer, .. } => self.arm(timer),
                Output::Absorb { survivor, .. } => self.pending.push(Ev::AbsorbDone(survivor.0)),
                Output::Handoff { to, .. } => self.pending.push(Ev::AbsorbDone(to.0)),
                Output::Retire { id, .. } => {
                    let bit = 1u64 << id.0;
                    if self.retired & bit != 0 {
                        outcome.double_retire = true;
                    }
                    self.retired |= bit;
                }
                Output::Delivered { .. } => outcome.accepted_delivery = true,
                Output::DuplicateDropped { .. } => outcome.dup_dropped = true,
                Output::Heal { .. } => outcome.healed = true,
                Output::Departed { .. } => outcome.departed = true,
                Output::Teardown { reason } => outcome.teardown = Some(reason),
                Output::PassThrough { .. }
                | Output::Processed { .. }
                | Output::ChecksumMismatch { .. }
                | Output::Activate { .. }
                | Output::Resent { .. }
                | Output::QueryAdmitted { .. }
                | Output::QueryDone { .. }
                | Output::Finished { .. } => {}
            }
        }
        for from in send_dones {
            self.feed(host_from(from), fates, outcome);
        }
    }

    /// Arms a timer, replacing any timer occupying the same slot (a
    /// retransmission timer per tid, a probe per sender, a deadline per
    /// drainee) — drivers overwrite re-armed timers the same way.
    fn arm(&mut self, t: Timer) {
        self.timers.retain(|old| !same_slot(old, &t));
        self.timers.push(t);
    }

    /// Drops events and timers whose handler provably remains a no-op
    /// forever. Every rule relies on a monotone protocol fact (crashes,
    /// confirmed deaths, accepted/requeued tids and attempt counters
    /// never roll back), so a pruned transition could never re-enable.
    fn normalize(&mut self) {
        let snap = self.proto.snapshot();
        let Some(f) = snap.fault else {
            return;
        };
        let in_flight_eq = |tid: u64, attempt: u32| {
            f.in_flight
                .iter()
                .any(|e| e.tid == tid && e.attempts == attempt)
        };
        self.timers.retain(|t| match *t {
            Timer::Retransmit { tid, attempt } => in_flight_eq(tid, attempt),
            Timer::Probe { from, to, attempt } => {
                f.probing.get(from.0).copied().flatten() == Some((to.0, attempt))
            }
            Timer::DrainDeadline { host, .. } => {
                f.membership.draining & (1u64 << host.0) != 0
                    && f.confirmed_dead & (1u64 << host.0) == 0
            }
        });
        let in_flight_has = |tid: u64| f.in_flight.iter().any(|e| e.tid == tid);
        let settled = |tid: u64| {
            f.accepted.binary_search(&tid).is_ok() || f.requeued.binary_search(&tid).is_ok()
        };
        self.pending.retain(|e| match *e {
            // Completions die with their host: the handlers return
            // before touching any state once `crashed` is set.
            Ev::Setup(h) | Ev::JoinDone(h) | Ev::AbsorbDone(h) => f.crashed & (1u64 << h) == 0,
            // An ack for a transfer no longer in the ledger is ignored.
            Ev::AckWire { tid, .. } => in_flight_has(tid),
            Ev::Wire {
                to, tid, intact, ..
            } => {
                if f.crashed & (1u64 << to) != 0 {
                    // At a corpse only an unsettled orphan copy can still
                    // act (the last-copy salvage path).
                    in_flight_has(tid) || !settled(tid)
                } else if !intact {
                    // A corrupt copy at a live host only bumps the
                    // mismatch counter; the sender's timeout repairs it.
                    false
                } else {
                    // A settled (accepted or tombstoned) duplicate at a
                    // live host is dropped, and without a ledger entry
                    // not even re-acked.
                    !settled(tid) || in_flight_has(tid)
                }
            }
        });
    }
}

/// `HostId` shorthand used by `feed`'s eager wire release.
fn host_from(from: usize) -> Input<Vec<u8>> {
    Input::SendDone { from: HostId(from) }
}

/// Do two timers occupy the same driver slot?
fn same_slot(a: &Timer, b: &Timer) -> bool {
    match (a, b) {
        (Timer::Retransmit { tid: x, .. }, Timer::Retransmit { tid: y, .. }) => x == y,
        (Timer::Probe { from: x, .. }, Timer::Probe { from: y, .. }) => x == y,
        (Timer::DrainDeadline { host: x, .. }, Timer::DrainDeadline { host: y, .. }) => x == y,
        _ => false,
    }
}

/// Every fate vector of length `sends` the remaining budgets allow. The
/// all-`Ok` vector is always first.
pub fn fate_vectors(sends: usize, losses: u32, corruptions: u32) -> Vec<Vec<Fate>> {
    let mut out = Vec::new();
    let mut cur = vec![Fate::Ok; sends];
    fill(&mut cur, 0, losses, corruptions, &mut out);
    out
}

fn fill(cur: &mut Vec<Fate>, i: usize, losses: u32, corruptions: u32, out: &mut Vec<Vec<Fate>>) {
    if i == cur.len() {
        out.push(cur.clone());
        return;
    }
    cur[i] = Fate::Ok;
    fill(cur, i + 1, losses, corruptions, out);
    if losses > 0 {
        cur[i] = Fate::Lost;
        fill(cur, i + 1, losses - 1, corruptions, out);
    }
    if corruptions > 0 {
        cur[i] = Fate::Corrupt;
        fill(cur, i + 1, losses, corruptions - 1, out);
    }
    cur[i] = Fate::Ok;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn fate_vectors_respect_budgets() {
        assert_eq!(fate_vectors(2, 0, 0), vec![vec![Fate::Ok, Fate::Ok]]);
        let vs = fate_vectors(2, 1, 1);
        assert_eq!(vs.first(), Some(&vec![Fate::Ok, Fate::Ok]));
        // ok/ok, 2×(one lost), 2×(one corrupt), lost+corrupt both orders.
        assert_eq!(vs.len(), 7);
        assert!(vs
            .iter()
            .all(|v| v.iter().filter(|f| **f == Fate::Lost).count() <= 1));
    }

    #[test]
    fn init_has_one_setup_event_per_host() {
        let w = World::init(&configs::smoke());
        assert_eq!(w.pending.len(), 2);
        assert!(w.timers.is_empty());
        assert_eq!(w.proto.fragments_total(), 1);
    }

    #[test]
    fn multi_init_parks_the_second_query_in_the_admission_queue() {
        use data_roundabout::protocol::QueryStatus;
        let w = World::init(&configs::multi_smoke());
        // Both queries' fragments count toward the completion target...
        assert_eq!(w.proto.fragments_total(), 2);
        // ...but only the first is admitted under max_active = 1; the
        // second waits in the ledger with its envelope parked.
        let ledger = w.proto.query_ledger().expect("multi-tenant ledger");
        assert_eq!(ledger.entry(0).map(|e| e.status), Some(QueryStatus::Active));
        assert_eq!(
            ledger.entry(1).map(|e| e.status),
            Some(QueryStatus::Pending)
        );
        assert_eq!(
            ledger.entry(1).map(|e| e.batches.iter().flatten().count()),
            Some(1)
        );
    }

    #[test]
    fn setup_chain_reaches_first_send() {
        let mut w = World::init(&configs::smoke());
        let o = w.apply(&Choice::Ev(Ev::Setup(0)), &[]);
        assert_eq!(o.teardown, None);
        let o = w.apply(&Choice::Ev(Ev::Setup(1)), &[]);
        assert_eq!(o.teardown, None);
        // Host 0 joined its local fragment eagerly; completing the join
        // emits the first reliable send with an armed retransmit timer.
        let o = w.apply(&Choice::Ev(Ev::JoinDone(0)), &[Fate::Ok]);
        assert_eq!(o.sends, 1);
        assert!(w.pending.iter().any(|e| matches!(
            e,
            Ev::Wire {
                to: 1,
                intact: true,
                ..
            }
        )));
        assert_eq!(w.timers.len(), 1);
    }
}
