//! End-to-end checks of the explorer itself: the bounded smoke
//! configurations verify clean, the seeded sabotage is caught with a
//! minimal trace, and the reductions actually reduce.

use ring_verify::{configs, explore, CheckConfig};

#[test]
fn smoke_bound_is_exhaustive_and_clean() {
    let report = explore(&configs::smoke()).expect("within state cap");
    assert!(
        report.violation.is_none(),
        "smoke violation: {:?}",
        report.violation
    );
    // Regression floor: shrinking below this means exploration lost
    // transitions, not that the protocol got simpler.
    assert!(report.states > 500, "only {} states", report.states);
    assert!(
        report.samples.iter().any(|(l, _)| *l == "completion"),
        "no run reached completion"
    );
    assert!(
        report.samples.iter().any(|(l, _)| *l == "heal"),
        "no run healed around the crash"
    );
}

#[test]
fn classic_bound_is_clean() {
    let report = explore(&configs::classic()).expect("within state cap");
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

#[test]
fn sabotage_is_caught_with_a_minimal_trace() {
    let report = explore(&configs::sabotage()).expect("within state cap");
    let v = report
        .violation
        .expect("seeded double credit must be caught");
    assert_eq!(v.family, "credit-conservation");
    // BFS guarantees the shortest counterexample: setup, the join that
    // emits the first send, and the delivery that triggers the grant.
    assert_eq!(v.trace.len(), 3, "trace not minimal: {:?}", v.trace);
}

#[test]
fn state_cap_is_a_hard_error() {
    let tiny = CheckConfig {
        max_states: 10,
        ..configs::smoke()
    };
    assert!(explore(&tiny).is_err(), "cap must abort, never truncate");
}

#[test]
fn rotation_symmetry_shrinks_the_symmetric_bound() {
    let sym = configs::symmetric3();
    let plain = CheckConfig {
        symmetry: false,
        ..sym.clone()
    };
    let with = explore(&sym).expect("within cap");
    let without = explore(&plain).expect("within cap");
    assert!(with.violation.is_none() && without.violation.is_none());
    assert!(
        with.states < without.states,
        "symmetry reduction had no effect: {} vs {}",
        with.states,
        without.states
    );
}

#[test]
fn symmetry_flag_is_ignored_on_asymmetric_configs() {
    let cfg = CheckConfig {
        symmetry: true, // frags [1, 0] are not rotation-symmetric
        ..configs::smoke()
    };
    assert!(!cfg.symmetry_valid());
    let plain = explore(&configs::smoke()).expect("within cap");
    let flagged = explore(&cfg).expect("within cap");
    assert_eq!(plain.states, flagged.states);
}
